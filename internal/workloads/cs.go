package workloads

import (
	"repro/internal/addr"
)

// This file holds the nine cache-sufficient (CS) applications of Table 2.
// Their memory-access ratios sit below the paper's 1% threshold, so the
// L1D barely influences their IPC; what matters is that their reuse
// patterns match Fig. 3 (e.g. HG/STEN long-RD and compulsory-dominated,
// SC/BP short-RD) so cache-management schemes leave them unharmed —
// and that SRAD/BT keep the high hit rates that Stall-Bypass damages.
//
// All kernels launch 16 blocks of 16 warps: one block per SM under the
// round-robin dispatcher, 16 resident warps per SM.
//
// Every generator takes a scale factor: scale 1 is the paper-suite
// shape (byte-identical to the original eager generators), larger
// scales multiply the block count and the shared-region footprints so
// grids of 10-100x stress sampling periods and lost-locality detection
// in regimes the paper never measured.

const (
	csBlocks = 16
	csWarps  = 16
)

// perBlockArrays pre-allocates one region per block so warps of a block
// share data (shared tiles, weight matrices, tree nodes).
func perBlockArrays(mem *layout, blocks, lines int) []addr.Addr {
	out := make([]addr.Addr, blocks)
	for i := range out {
		out[i] = mem.array(lines)
	}
	return out
}

// gridHG models CUDA Samples' Histogram: a streaming scan of the input
// (compulsory misses only) plus scattered bin updates over a shared bin
// region, giving the long reuse distances of Fig. 3 and the lowest
// memory-access ratio of the suite (Fig. 6).
func gridHG(scale int) gridSpec {
	mem := &layout{}
	binsLines := 512 * scale
	bins := mem.array(binsLines)
	return gridSpec{name: "HG", blocks: csBlocks * scale, warps: csWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			rng := seedFor(1, block, warp)
			const inputPerWarp = 10
			input := mem.array(inputPerWarp)
			for i := 0; i < inputPerWarp; i++ {
				b.loadVec(0, lineAt(input, i)) // stream the input
				// Per-element binning: a few diverged bin touches.
				binLines := make([]addr.Addr, 8)
				for j := range binLines {
					binLines[j] = lineAt(bins, rng.Intn(binsLines))
				}
				b.loadGather(1, binLines)
				b.compute(100, 350) // hashing and local sub-histogram work
			}
		}}
}

// gridHS models Rodinia's Hotspot: a 2D thermal stencil where each row is
// reused by the three vertically adjacent outputs — short reuse
// distances, modest memory intensity.
func gridHS(scale int) gridSpec {
	mem := &layout{}
	const rows = 6
	return gridSpec{name: "HS", blocks: csBlocks * scale, warps: csWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			temp := mem.array(rows + 2)
			power := mem.array(rows)
			out := mem.array(rows)
			for y := 0; y < rows; y++ {
				b.loadVec(0, lineAt(temp, y))   // north (reused: was center)
				b.loadVec(1, lineAt(temp, y+1)) // center (reused: was south)
				b.loadVec(2, lineAt(temp, y+2)) // south (first touch)
				b.loadVec(3, lineAt(power, y))  // power map, streamed
				b.compute(100, 99)              // flux arithmetic
				b.storeVec(4, lineAt(out, y))
			}
		}}
}

// gridSTEN models Parboil's 3-D stencil: each warp sweeps its own slab of
// the volume; a plane line is re-referenced one full y-sweep later, so
// almost every reuse distance exceeds 64 (Fig. 3) and larger caches
// barely help (Fig. 4).
func gridSTEN(scale int) gridSpec {
	mem := &layout{}
	const slabLines = 40 // y-lines of the plane owned by one warp
	const planes = 2
	return gridSpec{name: "STEN", blocks: csBlocks * scale, warps: csWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			vol := mem.array(slabLines * (planes + 2))
			out := mem.array(slabLines * planes)
			at := func(z, y int) addr.Addr { return lineAt(vol, z*slabLines+y) }
			for z := 1; z <= planes; z++ {
				for y := 0; y < slabLines; y++ {
					b.loadVec(0, at(z-1, y))
					b.loadVec(1, at(z, y))
					b.loadVec(2, at(z+1, y))
					b.compute(100, 58)
					b.storeVec(3, lineAt(out, (z-1)*slabLines+y))
				}
			}
		}}
}

// gridSC models separable convolution: a sliding window over rows where
// each input line is re-read by the immediately following outputs —
// reuse distances of 1–4.
func gridSC(scale int) gridSpec {
	mem := &layout{}
	const rows = 16
	return gridSpec{name: "SC", blocks: csBlocks * scale, warps: csWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			img := mem.array(rows + 2)
			out := mem.array(rows)
			for y := 0; y < rows; y++ {
				b.loadVec(0, lineAt(img, y))
				b.loadVec(1, lineAt(img, y+1))
				b.loadVec(2, lineAt(img, y+2))
				b.compute(100, 38) // 9-tap filter math
				b.storeVec(3, lineAt(out, y))
			}
		}}
}

// gridBP models Rodinia's Back Propagation forward pass: a per-block
// weight matrix shared by all warps and re-walked for every input
// element — short reuse distances.
func gridBP(scale int) gridSpec {
	mem := &layout{}
	const weightLines = 16
	blocks := csBlocks * scale
	weights := perBlockArrays(mem, blocks, weightLines)
	return gridSpec{name: "BP", blocks: blocks, warps: csWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			const inputs = 12
			in := mem.array(inputs)
			for i := 0; i < inputs; i++ {
				b.loadVec(0, lineAt(in, i)) // stream inputs
				// Re-walk a slice of the shared weight matrix: tight reuse.
				for w := 0; w < 4; w++ {
					b.loadVec(1, lineAt(weights[block], (i+w)%weightLines))
				}
				b.compute(100, 40) // dot products and sigmoid
			}
		}}
}

// gridSRAD models Rodinia's SRAD diffusion: all warps of a block sweep a
// shared image whose footprint fits the L1D; vertical-neighbor sharing
// between adjacent warps gives a high hit rate that over-bypassing
// schemes destroy (§6.1.1).
func gridSRAD(scale int) gridSpec {
	mem := &layout{}
	const warps = 48 // full occupancy: bursts of loads expose stalls
	const rows = warps
	blocks := csBlocks * scale
	imgs := perBlockArrays(mem, blocks, rows+2)
	coeffs := perBlockArrays(mem, blocks, rows+2)
	return gridSpec{name: "SRAD", blocks: blocks, warps: warps, mem: mem,
		build: func(b *wb, block, warp int) {
			img, coeff := imgs[block], coeffs[block]
			const passes = 8
			for pass := 0; pass < passes; pass++ {
				y := warp
				b.loadVec(0, lineAt(img, y))
				b.loadVec(1, lineAt(img, y+1))
				b.loadVec(2, lineAt(img, y+2))
				b.loadVec(3, lineAt(coeff, y+1))
				b.compute(100, 26)
				b.storeVec(4, lineAt(coeff, y+1))
			}
		}}
}

// gridNW models Needleman-Wunsch: the anti-diagonal wavefront re-reads
// the previous two diagonals quickly but the reference matrix at long
// distances — a mixed RDD.
func gridNW(scale int) gridSpec {
	mem := &layout{}
	const diag = 6
	refLines := 512 * scale
	ref := mem.array(refLines)
	return gridSpec{name: "NW", blocks: csBlocks * scale, warps: csWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			rng := seedFor(7, block, warp)
			score := mem.array(3 * diag)
			for step := 0; step < 40; step++ {
				cur := step % 3
				prev := (step + 2) % 3
				prev2 := (step + 1) % 3
				b.loadVec(0, lineAt(score, prev*diag+step%diag))  // short RD
				b.loadVec(1, lineAt(score, prev2*diag+step%diag)) // short RD
				b.loadVec(2, lineAt(ref, rng.Intn(refLines)))
				b.compute(100, 17)
				b.storeVec(3, lineAt(score, cur*diag+step%diag))
			}
		}}
}

// gridGEMM models Polybench's GEMM with shared-memory tiling: global
// accesses stream the A/B tiles once per block while warps of the same
// block touch the same tile lines within a few cycles of each other —
// short reuse distances.
func gridGEMM(scale int) gridSpec {
	mem := &layout{}
	const tiles = 24
	const tileLines = 8
	blocks := csBlocks * scale
	a := perBlockArrays(mem, blocks, tiles*tileLines)
	bm := perBlockArrays(mem, blocks, tiles*tileLines)
	return gridSpec{name: "GEMM", blocks: blocks, warps: csWarps, mem: mem,
		build: func(b *wb, block, warp int) {
			c := mem.array(tileLines)
			for t := 0; t < tiles; t++ {
				for l := 0; l < tileLines; l++ {
					// All warps of the block load the same tile lines: the
					// interleaved issue makes the RD 1-4.
					b.loadVec(0, lineAt(a[block], t*tileLines+l))
					b.loadVec(1, lineAt(bm[block], t*tileLines+l))
					b.compute(100, 7) // the k-loop multiply-accumulate
				}
			}
			for l := 0; l < tileLines; l++ {
				b.loadVec(2, lineAt(c, l))
				b.storeVec(3, lineAt(c, l))
			}
		}}
}

// gridBT models Rodinia's B+tree lookups: root and inner nodes are hit by
// every query (very short RD, high hit rate) while leaves scatter —
// exactly the profile that Stall-Bypass damages by over-bypassing.
func gridBT(scale int) gridSpec {
	mem := &layout{}
	const innerLines = 6
	leafLines := 2048 * scale
	blocks := csBlocks * scale
	inner := perBlockArrays(mem, blocks, innerLines)
	leaves := mem.array(leafLines)
	return gridSpec{name: "BT", blocks: blocks, warps: 48, mem: mem,
		build: func(b *wb, block, warp int) {
			rng := seedFor(9, block, warp)
			const queries = 10
			for q := 0; q < queries; q++ {
				b.loadVec(0, lineAt(inner[block], 0)) // root: RD ~1
				b.loadVec(1, lineAt(inner[block], 1+rng.Intn(innerLines-1)))
				b.loadGather(2, []addr.Addr{
					lineAt(leaves, rng.Intn(leafLines)),
					lineAt(leaves, rng.Intn(leafLines)),
				})
				b.compute(100, 11) // key comparisons
			}
		}}
}
