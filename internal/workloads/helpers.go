package workloads

import (
	"sync"

	"repro/internal/addr"
	"repro/internal/prng"
	"repro/internal/trace"
)

// lineBytes is the cache-line size all generators target (Table 1).
const lineBytes = 128

// wordBytes is the per-lane element size (32-bit values).
const wordBytes = 4

// warpLanes is the warp width (Table 1).
const warpLanes = 32

// computeLatency is the pipeline latency of generated ALU instructions.
const computeLatency = 4

// layout hands out disjoint, line-aligned array regions in the simulated
// global address space.
type layout struct {
	next uint64
}

// array reserves a region of n cache lines and returns its base address.
func (l *layout) array(lines int) addr.Addr {
	base := l.next
	l.next += uint64(lines) * lineBytes
	// Guard gap so off-by-one neighbor accesses never alias regions.
	l.next += 8 * lineBytes
	return addr.Addr(base)
}

// wb builds one warp's instruction stream. It runs a generator's build
// closure in one of three modes, so the same closure serves eager
// materialization, shape discovery, and lazy chunked streaming:
//
//   - eager (zero value): every instruction is appended to instrs with
//     freshly allocated address slices — the original behavior, byte
//     for byte.
//   - shape (shape=true): nothing is materialized; only the running
//     instruction count n (and the closure's own layout/PRNG side
//     effects) advance.
//   - chunk (chunk != nil): only instructions whose index falls in
//     [skip, limit) are materialized, into the chunk's backing arrays;
//     everything else just advances n.
type wb struct {
	instrs []trace.Instr

	chunk       *trace.Chunk
	skip, limit int
	shape       bool
	n           int // instructions emitted so far (all modes)
}

// want reports whether the current instruction must be materialized.
func (b *wb) want() bool {
	if b.shape {
		return false
	}
	if b.chunk != nil {
		return b.n >= b.skip && b.n < b.limit
	}
	return true
}

// lanes returns an n-address slice for the instruction being built:
// carved from the chunk arena in chunk mode (capped so later appends
// can never scribble over it), freshly allocated in eager mode.
func (b *wb) lanes(n int) []addr.Addr {
	if b.chunk != nil {
		start := len(b.chunk.Addrs)
		for i := 0; i < n; i++ {
			b.chunk.Addrs = append(b.chunk.Addrs, 0)
		}
		return b.chunk.Addrs[start:len(b.chunk.Addrs):len(b.chunk.Addrs)]
	}
	return make([]addr.Addr, n)
}

// push emits a materialized instruction and advances the stream.
func (b *wb) push(in trace.Instr) {
	if b.chunk != nil {
		b.chunk.Instrs = append(b.chunk.Instrs, in)
	} else {
		b.instrs = append(b.instrs, in)
	}
	b.n++
}

// compute appends n full-warp ALU instructions. Runs that fall outside
// the materialization window cost O(1), which makes chunked replay of
// compute-heavy kernels cheap.
func (b *wb) compute(pc uint32, n int) {
	if !b.shape && (b.chunk == nil || (b.n < b.limit && b.n+n > b.skip)) {
		lo, hi := b.n, b.n+n
		if b.chunk != nil {
			if lo < b.skip {
				lo = b.skip
			}
			if hi > b.limit {
				hi = b.limit
			}
		}
		for i := lo; i < hi; i++ {
			if b.chunk != nil {
				b.chunk.Instrs = append(b.chunk.Instrs, trace.NewCompute(pc, computeLatency, warpLanes))
			} else {
				b.instrs = append(b.instrs, trace.NewCompute(pc, computeLatency, warpLanes))
			}
		}
	}
	b.n += n
}

// loadVec appends a fully coalesced load: 32 lanes reading consecutive
// words starting at base (one cache line when line-aligned).
func (b *wb) loadVec(pc uint32, base addr.Addr) {
	if !b.want() {
		b.n++
		return
	}
	addrs := b.lanes(warpLanes)
	for i := range addrs {
		addrs[i] = base + addr.Addr(i*wordBytes)
	}
	b.push(trace.NewLoad(pc, addrs))
}

// storeVec appends a fully coalesced store of one line.
func (b *wb) storeVec(pc uint32, base addr.Addr) {
	if !b.want() {
		b.n++
		return
	}
	addrs := b.lanes(warpLanes)
	for i := range addrs {
		addrs[i] = base + addr.Addr(i*wordBytes)
	}
	b.push(trace.NewStore(pc, addrs))
}

// loadSpan appends a load whose 32 lanes stride evenly across `lines`
// consecutive cache lines starting at base — the partially coalesced
// access pattern of column-major or structure-of-arrays code.
func (b *wb) loadSpan(pc uint32, base addr.Addr, lines int) {
	if !b.want() {
		b.n++
		return
	}
	if lines < 1 {
		lines = 1
	}
	if lines > warpLanes {
		lines = warpLanes
	}
	addrs := b.lanes(warpLanes)
	for i := range addrs {
		line := i * lines / warpLanes
		within := (i % (warpLanes / lines)) * wordBytes
		addrs[i] = base + addr.Addr(line*lineBytes+within)
	}
	b.push(trace.NewLoad(pc, addrs))
}

// loadGather appends a load with one lane per given line address — the
// fully diverged pattern of pointer-chasing and hash-table code.
func (b *wb) loadGather(pc uint32, lines []addr.Addr) {
	if !b.want() {
		b.n++
		return
	}
	addrs := b.lanes(len(lines))
	copy(addrs, lines)
	b.push(trace.NewLoad(pc, addrs))
}

// storeGather appends a store with one lane per given line address.
func (b *wb) storeGather(pc uint32, lines []addr.Addr) {
	if !b.want() {
		b.n++
		return
	}
	addrs := b.lanes(len(lines))
	copy(addrs, lines)
	b.push(trace.NewStore(pc, addrs))
}

// trace finalizes the warp (eager mode).
func (b *wb) trace() *trace.WarpTrace {
	return &trace.WarpTrace{Instrs: b.instrs}
}

// gridSpec is a generator's deferred grid: the launch shape plus the
// per-warp build closure, with the layout allocator the closure draws
// per-warp regions from. One gridSpec instance is consumed exactly once
// — eagerly via Kernel or lazily via newGridStream — because builds
// advance the layout cursor.
type gridSpec struct {
	name   string
	blocks int
	warps  int // warps per block
	mem    *layout
	build  func(b *wb, block, warp int)
}

// Kernel materializes the whole grid eagerly — byte-identical to what
// the pre-streaming generators produced.
func (g gridSpec) Kernel() *trace.Kernel {
	k := &trace.Kernel{Name: g.name}
	for bi := 0; bi < g.blocks; bi++ {
		blk := &trace.Block{}
		for wi := 0; wi < g.warps; wi++ {
			b := &wb{}
			g.build(b, bi, wi)
			blk.Warps = append(blk.Warps, b.trace())
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

// grid assembles blocks x warpsPerBlock warps, where build(b, block,
// warp) fills each warp's stream.
func grid(name string, blocks, warpsPerBlock int, build func(b *wb, block, warp int)) *trace.Kernel {
	return gridSpec{name: name, blocks: blocks, warps: warpsPerBlock, build: build}.Kernel()
}

// gridStream serves a gridSpec lazily as a trace.Stream. Generators
// allocate per-warp regions *inside* their build closures, so a warp's
// addresses depend on every earlier warp's allocations; the stream
// therefore keeps an incremental shape pass — one layout-cursor
// snapshot per warp, extended on demand — and every refill restores
// the warp's snapshot and replays its closure in chunk mode, skipping
// instructions outside the requested window. Replay work per refill is
// one closure run (with O(1) skipped compute runs), traded for never
// materializing the grid.
type gridStream struct {
	g   gridSpec
	key string

	mu     sync.Mutex
	snaps  []uint64 // snaps[i] = layout cursor before building warp i
	counts []int    // counts[i] = instruction count of shaped warp i
}

// newGridStream wraps g; key is the stream's cache identity ("" for
// uncacheable custom grids).
func newGridStream(g gridSpec, key string) *gridStream {
	s := &gridStream{g: g, key: key}
	if g.mem == nil {
		s.g.mem = &layout{}
	}
	s.snaps = append(s.snaps, s.g.mem.next)
	return s
}

func (s *gridStream) Name() string        { return s.g.name }
func (s *gridStream) Blocks() int         { return s.g.blocks }
func (s *gridStream) Warps(block int) int { return s.g.warps }
func (s *gridStream) SpecKey() string     { return s.key }

// ensureShaped extends the shape pass through global warp index idx,
// running build closures in shape mode (layout and PRNG side effects
// only) to learn each warp's layout snapshot and instruction count.
func (s *gridStream) ensureShaped(idx int) {
	for len(s.counts) <= idx {
		i := len(s.counts)
		s.g.mem.next = s.snaps[i]
		b := &wb{shape: true}
		s.g.build(b, i/s.g.warps, i%s.g.warps)
		s.counts = append(s.counts, b.n)
		s.snaps = append(s.snaps, s.g.mem.next)
	}
}

func (s *gridStream) Fill(block, warp, start int, c *trace.Chunk) ([]trace.Instr, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := block*s.g.warps + warp
	s.ensureShaped(idx)
	window := cap(c.Instrs)
	if window == 0 {
		window = trace.DefaultChunkInstrs
	}
	limit := start + window
	if n := s.counts[idx]; limit > n {
		limit = n
	}
	s.g.mem.next = s.snaps[idx]
	b := &wb{chunk: c, skip: start, limit: limit}
	s.g.build(b, block, warp)
	return c.Instrs, limit == s.counts[idx], true
}

// seedFor derives a deterministic per-(benchmark, block, warp) PRNG.
func seedFor(app uint64, block, warp int) *prng.Source {
	return prng.New(app*1_000_003 + uint64(block)*8_191 + uint64(warp)*131 + 17)
}

// lineAt returns the address of the i-th line of a region.
func lineAt(base addr.Addr, i int) addr.Addr {
	return base + addr.Addr(i*lineBytes)
}
