package workloads

import (
	"repro/internal/addr"
	"repro/internal/prng"
	"repro/internal/trace"
)

// lineBytes is the cache-line size all generators target (Table 1).
const lineBytes = 128

// wordBytes is the per-lane element size (32-bit values).
const wordBytes = 4

// warpLanes is the warp width (Table 1).
const warpLanes = 32

// computeLatency is the pipeline latency of generated ALU instructions.
const computeLatency = 4

// layout hands out disjoint, line-aligned array regions in the simulated
// global address space.
type layout struct {
	next uint64
}

// array reserves a region of n cache lines and returns its base address.
func (l *layout) array(lines int) addr.Addr {
	base := l.next
	l.next += uint64(lines) * lineBytes
	// Guard gap so off-by-one neighbor accesses never alias regions.
	l.next += 8 * lineBytes
	return addr.Addr(base)
}

// wb builds one warp's instruction stream.
type wb struct {
	instrs []trace.Instr
}

// compute appends n full-warp ALU instructions.
func (b *wb) compute(pc uint32, n int) {
	for i := 0; i < n; i++ {
		b.instrs = append(b.instrs, trace.NewCompute(pc, computeLatency, warpLanes))
	}
}

// loadVec appends a fully coalesced load: 32 lanes reading consecutive
// words starting at base (one cache line when line-aligned).
func (b *wb) loadVec(pc uint32, base addr.Addr) {
	addrs := make([]addr.Addr, warpLanes)
	for i := range addrs {
		addrs[i] = base + addr.Addr(i*wordBytes)
	}
	b.instrs = append(b.instrs, trace.NewLoad(pc, addrs))
}

// storeVec appends a fully coalesced store of one line.
func (b *wb) storeVec(pc uint32, base addr.Addr) {
	addrs := make([]addr.Addr, warpLanes)
	for i := range addrs {
		addrs[i] = base + addr.Addr(i*wordBytes)
	}
	b.instrs = append(b.instrs, trace.NewStore(pc, addrs))
}

// loadSpan appends a load whose 32 lanes stride evenly across `lines`
// consecutive cache lines starting at base — the partially coalesced
// access pattern of column-major or structure-of-arrays code.
func (b *wb) loadSpan(pc uint32, base addr.Addr, lines int) {
	if lines < 1 {
		lines = 1
	}
	if lines > warpLanes {
		lines = warpLanes
	}
	addrs := make([]addr.Addr, warpLanes)
	for i := range addrs {
		line := i * lines / warpLanes
		within := (i % (warpLanes / lines)) * wordBytes
		addrs[i] = base + addr.Addr(line*lineBytes+within)
	}
	b.instrs = append(b.instrs, trace.NewLoad(pc, addrs))
}

// loadGather appends a load with one lane per given line address — the
// fully diverged pattern of pointer-chasing and hash-table code.
func (b *wb) loadGather(pc uint32, lines []addr.Addr) {
	addrs := make([]addr.Addr, len(lines))
	copy(addrs, lines)
	b.instrs = append(b.instrs, trace.NewLoad(pc, addrs))
}

// trace finalizes the warp.
func (b *wb) trace() *trace.WarpTrace {
	return &trace.WarpTrace{Instrs: b.instrs}
}

// grid assembles blocks x warpsPerBlock warps, where build(b, block,
// warp) fills each warp's stream.
func grid(name string, blocks, warpsPerBlock int, build func(b *wb, block, warp int)) *trace.Kernel {
	k := &trace.Kernel{Name: name}
	for bi := 0; bi < blocks; bi++ {
		blk := &trace.Block{}
		for wi := 0; wi < warpsPerBlock; wi++ {
			b := &wb{}
			build(b, bi, wi)
			blk.Warps = append(blk.Warps, b.trace())
		}
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

// seedFor derives a deterministic per-(benchmark, block, warp) PRNG.
func seedFor(app uint64, block, warp int) *prng.Source {
	return prng.New(app*1_000_003 + uint64(block)*8_191 + uint64(warp)*131 + 17)
}

// lineAt returns the address of the i-th line of a region.
func lineAt(base addr.Addr, i int) addr.Addr {
	return base + addr.Addr(i*lineBytes)
}
