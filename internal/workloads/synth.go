package workloads

import (
	"encoding/json"
	"fmt"

	"repro/internal/addr"
	"repro/internal/trace"
)

// SynthSpec describes a seeded synthetic kernel built by the
// adversarial pattern mixer. Unlike the Table 2 generators — which
// model real applications' loop nests — a SynthSpec exists to visit
// corners of the access-pattern space mechanically: the conformance
// fuzzer draws random specs, the corpus commits interesting ones, and
// the shrinker bisects a failing spec's fields toward the smallest
// kernel that still reproduces a failure.
//
// Everything is derived from Seed through SplitMix64, so a spec is a
// complete, JSON-serializable description of its kernel: equal specs
// generate byte-identical traces on every host.
//
// The mixer draws each memory instruction's pattern from the weighted
// classes below (weights are relative; all zero means pure streaming):
//
//   - Stream: sequential full-line loads walking the footprint — the
//     compulsory-miss, fast-forward-friendly regime.
//   - Stride: partially coalesced loads whose lanes span several
//     consecutive lines (column-major / SoA code).
//   - Gather: fully diverged loads, one random line per lane — the
//     MSHR- and miss-queue-thrashing regime.
//   - Hot: repeated full-line loads over a tiny working set — the
//     high-reuse regime protection schemes must not evict.
//   - Conflict: full-line loads striding by a fixed line distance, so
//     a power-of-two stride folds onto few cache sets — the
//     set-conflict regime that starves victim selection.
type SynthSpec struct {
	Name string `json:"name,omitempty"`
	Seed uint64 `json:"seed"`

	Blocks          int `json:"blocks"`                // thread blocks (min 1)
	WarpsPerBlock   int `json:"warps_per_block"`       // warps per block (min 1)
	MemInsnsPerWarp int `json:"mem_insns_per_warp"`    // memory instructions per warp (min 1)
	ComputeRun      int `json:"compute_run,omitempty"` // compute insns between memory insns

	FootprintLines int `json:"footprint_lines"`     // shared region size in lines (min 1)
	HotLines       int `json:"hot_lines,omitempty"` // hot-set size; 0 means 4
	StorePct       int `json:"store_pct,omitempty"` // % of memory insns that are stores

	StreamPct   int `json:"stream_pct,omitempty"`
	StridePct   int `json:"stride_pct,omitempty"`
	GatherPct   int `json:"gather_pct,omitempty"`
	HotPct      int `json:"hot_pct,omitempty"`
	ConflictPct int `json:"conflict_pct,omitempty"`

	StrideLines         int `json:"stride_lines,omitempty"`          // lines one stride load spans; 0 means 4
	ConflictStrideLines int `json:"conflict_stride_lines,omitempty"` // conflict stride; 0 means 32

	// PhaseLen, when positive, rotates the chosen pattern class by
	// PhaseRotate every PhaseLen memory instructions — the irregular
	// phase-change regime (a kernel that streams, then gathers, then
	// hammers a hot set) that stresses sampling-period turnover. Zero
	// keeps the stationary mixer.
	PhaseLen    int `json:"phase_len,omitempty"`
	PhaseRotate int `json:"phase_rotate,omitempty"` // classes per rotation; 0 means 1
}

// withDefaults clamps the spec to generate-able values without
// mutating the receiver, so a shrunk spec's JSON stays exactly what
// the shrinker chose.
func (s SynthSpec) withDefaults() SynthSpec {
	if s.Blocks < 1 {
		s.Blocks = 1
	}
	if s.WarpsPerBlock < 1 {
		s.WarpsPerBlock = 1
	}
	if s.MemInsnsPerWarp < 1 {
		s.MemInsnsPerWarp = 1
	}
	if s.ComputeRun < 0 {
		s.ComputeRun = 0
	}
	if s.FootprintLines < 1 {
		s.FootprintLines = 1
	}
	if s.HotLines <= 0 {
		s.HotLines = 4
	}
	if s.HotLines > s.FootprintLines {
		s.HotLines = s.FootprintLines
	}
	if s.StorePct < 0 {
		s.StorePct = 0
	}
	if s.StorePct > 100 {
		s.StorePct = 100
	}
	if s.StrideLines <= 0 {
		s.StrideLines = 4
	}
	if s.ConflictStrideLines <= 0 {
		s.ConflictStrideLines = 32
	}
	if s.PhaseLen < 0 {
		s.PhaseLen = 0
	}
	if s.PhaseLen > 0 && s.PhaseRotate <= 0 {
		s.PhaseRotate = 1
	}
	neg := func(v int) bool { return v < 0 }
	if neg(s.StreamPct) || neg(s.StridePct) || neg(s.GatherPct) || neg(s.HotPct) || neg(s.ConflictPct) {
		s.StreamPct, s.StridePct, s.GatherPct, s.HotPct, s.ConflictPct = 1, 0, 0, 0, 0
	}
	if s.StreamPct+s.StridePct+s.GatherPct+s.HotPct+s.ConflictPct == 0 {
		s.StreamPct = 1
	}
	return s
}

// Validate reports obviously unusable field values. The generator
// clamps everything anyway, but the corpus loader rejects malformed
// committed specs loudly instead of silently reinterpreting them.
func (s SynthSpec) Validate() error {
	bad := func(field string, v int) error {
		return fmt.Errorf("workloads: synth spec %q: %s = %d is not positive", s.Name, field, v)
	}
	switch {
	case s.Blocks < 1:
		return bad("blocks", s.Blocks)
	case s.WarpsPerBlock < 1:
		return bad("warps_per_block", s.WarpsPerBlock)
	case s.MemInsnsPerWarp < 1:
		return bad("mem_insns_per_warp", s.MemInsnsPerWarp)
	case s.FootprintLines < 1:
		return bad("footprint_lines", s.FootprintLines)
	}
	const maxKernelMemInsns = 1 << 24
	total := s.Blocks * s.WarpsPerBlock * s.MemInsnsPerWarp
	if s.Blocks > maxKernelMemInsns || s.WarpsPerBlock > maxKernelMemInsns ||
		s.MemInsnsPerWarp > maxKernelMemInsns || total > maxKernelMemInsns {
		return fmt.Errorf("workloads: synth spec %q: %d memory instructions exceeds the %d cap",
			s.Name, total, maxKernelMemInsns)
	}
	return nil
}

// pattern classes, in weight order.
const (
	patStream = iota
	patStride
	patGather
	patHot
	patConflict
	numPatterns
)

// Kernel generates the spec's kernel. PCs are stable across warps —
// one PC per (pattern, load/store) class — so per-instruction
// machinery (PDPT attribution, dead-block tables) sees the same static
// instructions from every warp, as it would in compiled code.
func (s SynthSpec) Kernel() *trace.Kernel {
	return s.gridSpec().Kernel()
}

// Stream returns the spec's kernel as a lazily generated stream whose
// windows are byte-identical to Kernel's output. The cache key is the
// spec's own canonical JSON — a synth kernel is fully defined by it.
func (s SynthSpec) Stream() trace.Stream {
	d := s.withDefaults()
	js, err := json.Marshal(d)
	if err != nil {
		panic(fmt.Sprintf("workloads: synth spec not marshalable: %v", err))
	}
	return newGridStream(s.gridSpec(), "synth:v1:"+string(js))
}

// Scaled multiplies the grid and footprint by n (n <= 1 returns the
// spec unchanged) — the synth counterpart of Spec.Stream's scale knob.
func (s SynthSpec) Scaled(n int) SynthSpec {
	if n > 1 {
		s.Blocks *= n
		s.FootprintLines *= n
	}
	return s
}

// gridSpec defers generation behind the shared grid machinery; the
// build closure's draw order is pinned by the committed conformance
// corpus, so it must not change.
func (s SynthSpec) gridSpec() gridSpec {
	s = s.withDefaults()
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("synth-%x", s.Seed)
	}
	mem := &layout{}
	base := mem.array(s.FootprintLines)
	weights := [numPatterns]int{s.StreamPct, s.StridePct, s.GatherPct, s.HotPct, s.ConflictPct}
	totalWeight := 0
	for _, w := range weights {
		totalWeight += w
	}

	gather := make([]addr.Addr, warpLanes)
	return gridSpec{name: name, blocks: s.Blocks, warps: s.WarpsPerBlock, mem: mem,
		build: func(b *wb, block, warp int) {
			r := seedFor(s.Seed, block, warp)
			cursor := r.Intn(s.FootprintLines) // per-warp streaming position
			for i := 0; i < s.MemInsnsPerWarp; i++ {
				if s.ComputeRun > 0 {
					b.compute(0, s.ComputeRun)
				}
				roll := r.Intn(totalWeight)
				pat := 0
				for pat < numPatterns-1 && roll >= weights[pat] {
					roll -= weights[pat]
					pat++
				}
				if s.PhaseLen > 0 {
					pat = (pat + (i/s.PhaseLen)*s.PhaseRotate) % numPatterns
				}
				store := r.Intn(100) < s.StorePct
				// PC 0 is compute; memory PCs start at 1, stores offset by
				// numPatterns so loads and stores never share attribution.
				pc := uint32(1 + pat)
				if store {
					pc += numPatterns
				}
				var target addr.Addr
				switch pat {
				case patStream:
					target = lineAt(base, cursor%s.FootprintLines)
					cursor++
				case patStride:
					span := s.StrideLines
					if span > s.FootprintLines {
						span = s.FootprintLines
					}
					start := r.Intn(max(s.FootprintLines-span+1, 1))
					if store {
						b.storeVec(pc, lineAt(base, start))
					} else {
						b.loadSpan(pc, lineAt(base, start), span)
					}
					continue
				case patGather:
					for l := range gather {
						gather[l] = lineAt(base, r.Intn(s.FootprintLines))
					}
					if store {
						b.storeGather(pc, gather)
					} else {
						b.loadGather(pc, gather)
					}
					continue
				case patHot:
					target = lineAt(base, r.Intn(s.HotLines))
				case patConflict:
					steps := s.FootprintLines/s.ConflictStrideLines + 1
					target = lineAt(base, (r.Intn(steps)*s.ConflictStrideLines)%s.FootprintLines)
				}
				if store {
					b.storeVec(pc, target)
				} else {
					b.loadVec(pc, target)
				}
			}
		}}
}
