package workloads

import (
	"bytes"
	"testing"
)

// mixedSpec exercises every pattern class and both memory kinds.
func mixedSpec(seed uint64) SynthSpec {
	return SynthSpec{
		Name: "mix", Seed: seed,
		Blocks: 2, WarpsPerBlock: 3, MemInsnsPerWarp: 64, ComputeRun: 2,
		FootprintLines: 128, HotLines: 4, StorePct: 20,
		StreamPct: 30, StridePct: 20, GatherPct: 20, HotPct: 20, ConflictPct: 10,
		StrideLines: 4, ConflictStrideLines: 32,
	}
}

func TestSynthKernelValidAndDeterministic(t *testing.T) {
	spec := mixedSpec(42)
	k1 := spec.Kernel()
	if err := k1.Validate(32); err != nil {
		t.Fatalf("generated kernel invalid: %v", err)
	}
	k2 := mixedSpec(42).Kernel()
	var b1, b2 bytes.Buffer
	if _, err := k1.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := k2.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same spec generated different traces")
	}
	var b3 bytes.Buffer
	if _, err := mixedSpec(43).Kernel().WriteTo(&b3); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Error("different seeds generated identical traces")
	}
}

func TestSynthKernelShape(t *testing.T) {
	spec := mixedSpec(7)
	k := spec.Kernel()
	sum := k.Summarize(lineBytes)
	if sum.Blocks != spec.Blocks {
		t.Errorf("blocks = %d, want %d", sum.Blocks, spec.Blocks)
	}
	if sum.Warps != spec.Blocks*spec.WarpsPerBlock {
		t.Errorf("warps = %d, want %d", sum.Warps, spec.Blocks*spec.WarpsPerBlock)
	}
	wantMem := uint64(spec.Blocks * spec.WarpsPerBlock * spec.MemInsnsPerWarp)
	if sum.MemInsns != wantMem {
		t.Errorf("mem insns = %d, want %d", sum.MemInsns, wantMem)
	}
	if sum.StoreInsns == 0 {
		t.Error("StorePct=20 generated no stores")
	}
	if sum.DistinctLines > uint64(spec.FootprintLines) {
		t.Errorf("footprint %d lines exceeds spec's %d", sum.DistinctLines, spec.FootprintLines)
	}
	// The footprint region must be respected even by the diverged
	// patterns: every line is inside [base, base+footprint).
	if sum.DistinctPCs < 5 {
		t.Errorf("only %d distinct memory PCs; mixer should attribute per pattern", sum.DistinctPCs)
	}
}

// TestSynthDegenerateSpecsClamp proves the generator never emits an
// invalid kernel, whatever the field values: the fuzzer's shrinker
// drives fields to their floors and beyond.
func TestSynthDegenerateSpecsClamp(t *testing.T) {
	specs := []SynthSpec{
		{}, // all zero
		{Seed: 1, Blocks: -5, WarpsPerBlock: -1, MemInsnsPerWarp: -1},
		{Seed: 2, Blocks: 1, WarpsPerBlock: 1, MemInsnsPerWarp: 1, FootprintLines: 1,
			HotPct: 1, HotLines: 99},
		{Seed: 3, Blocks: 1, WarpsPerBlock: 1, MemInsnsPerWarp: 8, FootprintLines: 2,
			ConflictPct: 1, ConflictStrideLines: 1000},
		{Seed: 4, Blocks: 1, WarpsPerBlock: 1, MemInsnsPerWarp: 8, FootprintLines: 3,
			StridePct: 1, StrideLines: 64, StorePct: 200},
		{Seed: 5, Blocks: 1, WarpsPerBlock: 1, MemInsnsPerWarp: 4, FootprintLines: 4,
			StreamPct: -1},
	}
	for i, s := range specs {
		k := s.Kernel()
		if err := k.Validate(32); err != nil {
			t.Errorf("spec %d: invalid kernel: %v", i, err)
		}
	}
}

func TestSynthSpecValidate(t *testing.T) {
	good := mixedSpec(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SynthSpec{
		{Seed: 1, WarpsPerBlock: 1, MemInsnsPerWarp: 1, FootprintLines: 1},                              // Blocks 0
		{Seed: 1, Blocks: 1, MemInsnsPerWarp: 1, FootprintLines: 1},                                     // warps 0
		{Seed: 1, Blocks: 1, WarpsPerBlock: 1, FootprintLines: 1},                                       // insns 0
		{Seed: 1, Blocks: 1, WarpsPerBlock: 1, MemInsnsPerWarp: 1},                                      // footprint 0
		{Seed: 1, Blocks: 1 << 13, WarpsPerBlock: 1 << 13, MemInsnsPerWarp: 1 << 13, FootprintLines: 1}, // too big
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d passed Validate", i)
		}
	}
}
