// Package workloads provides deterministic synthetic generators for the
// 18 GPU applications the paper evaluates (Table 2). Real CUDA binaries
// and GPGPU-Sim traces are unavailable in this environment, so each
// generator emits a per-warp instruction/address trace computed from the
// application's actual loop-nest structure, scaled to simulator-friendly
// sizes and tuned to reproduce the two characteristics the paper's
// analysis rests on: the reuse-distance distribution (Fig. 3/7) and the
// memory-access ratio with its 1% cache-sufficient/insufficient split
// (Fig. 6, Table 2).
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Class is the paper's cache-sufficiency classification.
type Class int

const (
	// CS applications have memory-access ratios under 1% and are not
	// limited by the L1D.
	CS Class = iota
	// CI applications exceed the 1% threshold and thrash the baseline L1D.
	CI
)

func (c Class) String() string {
	if c == CS {
		return "CS"
	}
	return "CI"
}

// RatioThreshold is the paper's CS/CI memory-access-ratio boundary (§3.2).
const RatioThreshold = 0.01

// Spec describes one benchmark application.
type Spec struct {
	Name     string // full name from Table 2
	Abbr     string // figure label
	Suite    string // originating benchmark suite
	Class    Class
	Input    string // the paper's input size (documentation only)
	Generate func() *trace.Kernel

	// gridGen is the scalable deferred generator behind Generate for
	// registry applications (nil for custom specs); Stream and
	// ScaledKernel derive from it.
	gridGen func(scale int) gridSpec

	// DominantBucket is the RD bucket (index into rdd.Buckets) expected
	// to dominate the application's RDD, or -1 when the paper shows a
	// spread across ranges. Used by validation tests.
	DominantBucket int
}

// GenVersion identifies the generators' trace content. Stream cache
// keys are spec-based ("app:HG:v1:scale1"), not content hashes, so any
// change to what a generator emits must bump this.
const GenVersion = 1

// app builds a registry entry from a scalable grid generator.
func app(name, abbr, suite string, class Class, input string, g func(int) gridSpec, bucket int) Spec {
	return Spec{
		Name: name, Abbr: abbr, Suite: suite, Class: class, Input: input,
		Generate:       func() *trace.Kernel { return g(1).Kernel() },
		gridGen:        g,
		DominantBucket: bucket,
	}
}

// registry lists the applications in the paper's Table 2 / figure order.
var registry = []Spec{
	app("Histogram", "HG", "CUDA Samples", CS, "67108864", gridHG, -1),
	app("Hotspot", "HS", "Rodinia", CS, "512x512", gridHS, 0),
	app("3-D Stencil Operation", "STEN", "Parboil", CS, "512x512x64", gridSTEN, 3),
	app("Separable Convolution", "SC", "Rodinia", CS, "2048x512", gridSC, 0),
	app("Back Propagation", "BP", "Rodinia", CS, "65536", gridBP, 0),
	app("Speckle Reducing Anisotropic Diffusion", "SRAD", "Rodinia", CS, "512x512", gridSRAD, 0),
	app("Needleman-Wunsch", "NW", "Rodinia", CS, "1024x1024", gridNW, -1),
	app("Matrix Multiply-add", "GEMM", "Polybench", CS, "512x512x512", gridGEMM, 0),
	app("B+tree", "BT", "Rodinia", CS, "6000x3000", gridBT, 0),
	app("Computational Fluid Dynamics", "CFD", "Rodinia", CI, "97046", gridCFD, 2),
	app("Page View Rank", "PVR", "Mars", CI, "250000", gridPVR, 1),
	app("Similarity Score", "SS", "Mars", CI, "512x128", gridSS, 2),
	app("Breadth-First Search", "BFS", "Rodinia", CI, "65536", gridBFS, -1),
	app("Matrix Multiplication", "MM", "Mars", CI, "256x256", gridMM, -1),
	app("Symmetric Rank-k", "SRK", "Polybench", CI, "256x256", gridSRK, 2),
	app("Symmetric Rank-2k", "SR2K", "Polybench", CI, "256x256", gridSR2K, 2),
	app("K-means", "KM", "Rodinia", CI, "204800", gridKM, 3),
	app("String Match", "STR", "Mars", CI, "354984", gridSTR, 3),
}

// All returns the 18 applications in Table 2 order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// ByClass returns the applications of one class, preserving order.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range registry {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// ByAbbr finds an application by its figure label.
func ByAbbr(abbr string) (Spec, error) {
	for _, s := range registry {
		if s.Abbr == abbr {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown application %q", abbr)
}

// Abbrs returns all figure labels in order.
func Abbrs() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Abbr
	}
	return out
}

// sharedKernels memoizes generated kernels process-wide. Generation is
// deterministic and simulations never mutate a kernel (per-warp pc
// state lives in sm.warp), so every suite, test, and tool in the
// process can share one instance per application and line size.
var (
	sharedMu      sync.Mutex
	sharedKernels = map[sharedKey]*trace.Kernel{}
)

type sharedKey struct {
	abbr     string
	lineSize int
}

// SharedKernel returns the application's kernel from a process-wide
// cache, generating it on first use and precomputing its coalesced
// line lists for the given cache line size. The returned kernel is
// shared and must be treated as read-only; registry applications are
// memoized by abbreviation, unknown (custom) specs are generated
// fresh on every call.
func (s Spec) SharedKernel(lineSize int) *trace.Kernel {
	reg, err := ByAbbr(s.Abbr)
	if err != nil || reg.Name != s.Name || reg.Suite != s.Suite ||
		reg.Class != s.Class || reg.Input != s.Input {
		// Not a registry application (or an abbreviation collision with
		// different metadata): generate fresh, never cache.
		k := s.Generate()
		k.PrecomputeCoalesced(lineSize)
		return k
	}
	key := sharedKey{s.Abbr, lineSize}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if k, ok := sharedKernels[key]; ok {
		return k
	}
	k := s.Generate()
	k.PrecomputeCoalesced(lineSize)
	sharedKernels[key] = k
	return k
}

// Stream returns a lazily generated trace.Stream of the application at
// the given scale factor (clamped to >= 1). Scale 1 streams exactly the
// trace Generate materializes; larger scales multiply the block count
// and shared footprints. Custom (non-registry) specs fall back to a
// precomputed-kernel compat stream.
func (s Spec) Stream(scale int) trace.Stream {
	if scale < 1 {
		scale = 1
	}
	if s.gridGen == nil {
		return trace.NewKernelStream(s.Generate())
	}
	key := fmt.Sprintf("app:%s:v%d:scale%d", s.Abbr, GenVersion, scale)
	return newGridStream(s.gridGen(scale), key)
}

// ScaledKernel materializes the application at the given scale factor —
// the eager counterpart of Stream, for differential tests and
// small-scale reference runs. Scale <= 1 (or a custom spec) is exactly
// Generate.
func (s Spec) ScaledKernel(scale int) *trace.Kernel {
	if s.gridGen == nil || scale <= 1 {
		return s.Generate()
	}
	return s.gridGen(scale).Kernel()
}

// SortedByRatio returns specs sorted ascending by the memory-access
// ratio of their generated kernels (the Fig. 6 x-axis ordering).
func SortedByRatio(lineSize int) []Spec {
	specs := All()
	ratios := make(map[string]float64, len(specs))
	for _, s := range specs {
		ratios[s.Abbr] = s.SharedKernel(lineSize).Summarize(lineSize).MemoryAccessRatio()
	}
	sort.SliceStable(specs, func(i, j int) bool {
		return ratios[specs[i].Abbr] < ratios[specs[j].Abbr]
	})
	return specs
}
