// Package workloads provides deterministic synthetic generators for the
// 18 GPU applications the paper evaluates (Table 2). Real CUDA binaries
// and GPGPU-Sim traces are unavailable in this environment, so each
// generator emits a per-warp instruction/address trace computed from the
// application's actual loop-nest structure, scaled to simulator-friendly
// sizes and tuned to reproduce the two characteristics the paper's
// analysis rests on: the reuse-distance distribution (Fig. 3/7) and the
// memory-access ratio with its 1% cache-sufficient/insufficient split
// (Fig. 6, Table 2).
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Class is the paper's cache-sufficiency classification.
type Class int

const (
	// CS applications have memory-access ratios under 1% and are not
	// limited by the L1D.
	CS Class = iota
	// CI applications exceed the 1% threshold and thrash the baseline L1D.
	CI
)

func (c Class) String() string {
	if c == CS {
		return "CS"
	}
	return "CI"
}

// RatioThreshold is the paper's CS/CI memory-access-ratio boundary (§3.2).
const RatioThreshold = 0.01

// Spec describes one benchmark application.
type Spec struct {
	Name     string // full name from Table 2
	Abbr     string // figure label
	Suite    string // originating benchmark suite
	Class    Class
	Input    string // the paper's input size (documentation only)
	Generate func() *trace.Kernel

	// DominantBucket is the RD bucket (index into rdd.Buckets) expected
	// to dominate the application's RDD, or -1 when the paper shows a
	// spread across ranges. Used by validation tests.
	DominantBucket int
}

// registry lists the applications in the paper's Table 2 / figure order.
var registry = []Spec{
	{"Histogram", "HG", "CUDA Samples", CS, "67108864", genHG, -1},
	{"Hotspot", "HS", "Rodinia", CS, "512x512", genHS, 0},
	{"3-D Stencil Operation", "STEN", "Parboil", CS, "512x512x64", genSTEN, 3},
	{"Separable Convolution", "SC", "Rodinia", CS, "2048x512", genSC, 0},
	{"Back Propagation", "BP", "Rodinia", CS, "65536", genBP, 0},
	{"Speckle Reducing Anisotropic Diffusion", "SRAD", "Rodinia", CS, "512x512", genSRAD, 0},
	{"Needleman-Wunsch", "NW", "Rodinia", CS, "1024x1024", genNW, -1},
	{"Matrix Multiply-add", "GEMM", "Polybench", CS, "512x512x512", genGEMM, 0},
	{"B+tree", "BT", "Rodinia", CS, "6000x3000", genBT, 0},
	{"Computational Fluid Dynamics", "CFD", "Rodinia", CI, "97046", genCFD, 2},
	{"Page View Rank", "PVR", "Mars", CI, "250000", genPVR, 1},
	{"Similarity Score", "SS", "Mars", CI, "512x128", genSS, 2},
	{"Breadth-First Search", "BFS", "Rodinia", CI, "65536", genBFS, -1},
	{"Matrix Multiplication", "MM", "Mars", CI, "256x256", genMM, -1},
	{"Symmetric Rank-k", "SRK", "Polybench", CI, "256x256", genSRK, 2},
	{"Symmetric Rank-2k", "SR2K", "Polybench", CI, "256x256", genSR2K, 2},
	{"K-means", "KM", "Rodinia", CI, "204800", genKM, 3},
	{"String Match", "STR", "Mars", CI, "354984", genSTR, 3},
}

// All returns the 18 applications in Table 2 order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// ByClass returns the applications of one class, preserving order.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range registry {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// ByAbbr finds an application by its figure label.
func ByAbbr(abbr string) (Spec, error) {
	for _, s := range registry {
		if s.Abbr == abbr {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown application %q", abbr)
}

// Abbrs returns all figure labels in order.
func Abbrs() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Abbr
	}
	return out
}

// sharedKernels memoizes generated kernels process-wide. Generation is
// deterministic and simulations never mutate a kernel (per-warp pc
// state lives in sm.warp), so every suite, test, and tool in the
// process can share one instance per application and line size.
var (
	sharedMu      sync.Mutex
	sharedKernels = map[sharedKey]*trace.Kernel{}
)

type sharedKey struct {
	abbr     string
	lineSize int
}

// SharedKernel returns the application's kernel from a process-wide
// cache, generating it on first use and precomputing its coalesced
// line lists for the given cache line size. The returned kernel is
// shared and must be treated as read-only; registry applications are
// memoized by abbreviation, unknown (custom) specs are generated
// fresh on every call.
func (s Spec) SharedKernel(lineSize int) *trace.Kernel {
	reg, err := ByAbbr(s.Abbr)
	if err != nil || reg.Name != s.Name || reg.Suite != s.Suite ||
		reg.Class != s.Class || reg.Input != s.Input {
		// Not a registry application (or an abbreviation collision with
		// different metadata): generate fresh, never cache.
		k := s.Generate()
		k.PrecomputeCoalesced(lineSize)
		return k
	}
	key := sharedKey{s.Abbr, lineSize}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if k, ok := sharedKernels[key]; ok {
		return k
	}
	k := s.Generate()
	k.PrecomputeCoalesced(lineSize)
	sharedKernels[key] = k
	return k
}

// SortedByRatio returns specs sorted ascending by the memory-access
// ratio of their generated kernels (the Fig. 6 x-axis ordering).
func SortedByRatio(lineSize int) []Spec {
	specs := All()
	ratios := make(map[string]float64, len(specs))
	for _, s := range specs {
		ratios[s.Abbr] = s.SharedKernel(lineSize).Summarize(lineSize).MemoryAccessRatio()
	}
	sort.SliceStable(specs, func(i, j int) bool {
		return ratios[specs[i].Abbr] < ratios[specs[j].Abbr]
	})
	return specs
}
