package workloads

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/rdd"
	"repro/internal/trace"
)

func TestRegistryMatchesTable2(t *testing.T) {
	specs := All()
	if len(specs) != 18 {
		t.Fatalf("registry has %d applications, Table 2 lists 18", len(specs))
	}
	wantOrder := []string{"HG", "HS", "STEN", "SC", "BP", "SRAD", "NW", "GEMM", "BT",
		"CFD", "PVR", "SS", "BFS", "MM", "SRK", "SR2K", "KM", "STR"}
	for i, s := range specs {
		if s.Abbr != wantOrder[i] {
			t.Errorf("position %d: %s, want %s", i, s.Abbr, wantOrder[i])
		}
	}
	// Class split per Table 2: first 9 CS, last 9 CI.
	for i, s := range specs {
		want := CS
		if i >= 9 {
			want = CI
		}
		if s.Class != want {
			t.Errorf("%s classified %v, Table 2 says %v", s.Abbr, s.Class, want)
		}
	}
	// Suites per Table 2.
	suites := map[string]string{
		"HG": "CUDA Samples", "HS": "Rodinia", "STEN": "Parboil", "SC": "Rodinia",
		"BP": "Rodinia", "SRAD": "Rodinia", "NW": "Rodinia", "GEMM": "Polybench",
		"BT": "Rodinia", "CFD": "Rodinia", "PVR": "Mars", "SS": "Mars",
		"BFS": "Rodinia", "MM": "Mars", "SRK": "Polybench", "SR2K": "Polybench",
		"KM": "Rodinia", "STR": "Mars",
	}
	for _, s := range specs {
		if s.Suite != suites[s.Abbr] {
			t.Errorf("%s suite %q, want %q", s.Abbr, s.Suite, suites[s.Abbr])
		}
	}
}

func TestByAbbr(t *testing.T) {
	s, err := ByAbbr("BFS")
	if err != nil || s.Name != "Breadth-First Search" {
		t.Errorf("ByAbbr(BFS) = %+v, %v", s, err)
	}
	if _, err := ByAbbr("NOPE"); err == nil {
		t.Error("unknown abbreviation accepted")
	}
	if got := len(Abbrs()); got != 18 {
		t.Errorf("Abbrs() returned %d entries", got)
	}
}

func TestByClass(t *testing.T) {
	if got := len(ByClass(CS)); got != 9 {
		t.Errorf("ByClass(CS) = %d apps", got)
	}
	if got := len(ByClass(CI)); got != 9 {
		t.Errorf("ByClass(CI) = %d apps", got)
	}
	if CS.String() != "CS" || CI.String() != "CI" {
		t.Error("Class strings wrong")
	}
}

func TestAllKernelsValid(t *testing.T) {
	cfg := config.Baseline()
	for _, s := range All() {
		k := s.Generate()
		if err := k.Validate(cfg.WarpSize); err != nil {
			t.Errorf("%s: invalid kernel: %v", s.Abbr, err)
		}
		if k.Name != s.Abbr {
			t.Errorf("%s: kernel named %q", s.Abbr, k.Name)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, s := range All() {
		a := s.Generate().Summarize(128)
		b := s.Generate().Summarize(128)
		if *a != *b {
			t.Errorf("%s: non-deterministic generation:\n%+v\nvs\n%+v", s.Abbr, a, b)
		}
	}
}

// TestClassificationThreshold checks the paper's §3.2 rule: CS below the
// 1% memory-access-ratio threshold, CI above it (Fig. 6).
func TestClassificationThreshold(t *testing.T) {
	for _, s := range All() {
		ratio := s.Generate().Summarize(128).MemoryAccessRatio()
		if s.Class == CS && ratio >= RatioThreshold {
			t.Errorf("%s is CS but ratio %.4f >= 1%%", s.Abbr, ratio)
		}
		if s.Class == CI && ratio < RatioThreshold {
			t.Errorf("%s is CI but ratio %.4f < 1%%", s.Abbr, ratio)
		}
	}
}

// TestRatioOrdering: Fig. 6 sorts applications by ratio; the registry
// order (Table 2 order) must already be ascending, HG lowest, STR highest.
func TestRatioOrdering(t *testing.T) {
	specs := All()
	prev := -1.0
	for _, s := range specs {
		ratio := s.Generate().Summarize(128).MemoryAccessRatio()
		if ratio <= prev {
			t.Errorf("%s ratio %.4f not above predecessor's %.4f (Fig. 6 ordering)",
				s.Abbr, ratio, prev)
		}
		prev = ratio
	}
	sorted := SortedByRatio(128)
	for i, s := range sorted {
		if s.Abbr != specs[i].Abbr {
			t.Errorf("SortedByRatio[%d] = %s, want %s", i, s.Abbr, specs[i].Abbr)
		}
	}
}

// TestDominantRDBuckets checks each application's RDD shape against the
// Fig. 3 expectation recorded in the registry.
func TestDominantRDBuckets(t *testing.T) {
	cfg := config.Baseline()
	for _, s := range All() {
		prof := rdd.ProfileKernel(s.Generate(), cfg.NumSMs, cfg.L1D)
		fr := prof.GlobalFractions()
		if s.DominantBucket < 0 {
			continue // mixed profile, no single dominant bucket
		}
		best, bestV := 0, fr[0]
		for i, v := range fr {
			if v > bestV {
				best, bestV = i, v
			}
		}
		if best != s.DominantBucket {
			t.Errorf("%s: dominant RD bucket %d (%.0f%%), registry expects %d (fractions %v)",
				s.Abbr, best, bestV*100, s.DominantBucket, fr)
		}
	}
}

// TestMMSpreadAcrossBuckets: the paper quotes MM's RDD explicitly
// (19.5/35.8/33.2/11.5); ours must at least populate every bucket with
// nontrivial mass (§3.1: "RDs may be distributed across all ranges").
func TestMMSpreadAcrossBuckets(t *testing.T) {
	cfg := config.Baseline()
	s, _ := ByAbbr("MM")
	fr := rdd.ProfileKernel(s.Generate(), cfg.NumSMs, cfg.L1D).GlobalFractions()
	for i, f := range fr {
		if f < 0.05 {
			t.Errorf("MM bucket %d holds only %.1f%% of reuses; paper reports a spread", i, f*100)
		}
	}
}

// TestBFSPerInstructionDiversity reproduces the Fig. 7 observation: BFS's
// memory instructions have very different RDDs — at least one dominated
// by short distances and at least one dominated by long ones.
func TestBFSPerInstructionDiversity(t *testing.T) {
	cfg := config.Baseline()
	s, _ := ByAbbr("BFS")
	prof := rdd.ProfileKernel(s.Generate(), cfg.NumSMs, cfg.L1D)
	pcs := prof.PCs()
	// Only instructions that re-reference data appear in the profile;
	// birth-only PCs do not. The static instruction count must still be
	// close to the paper's ten.
	if static := s.Generate().Summarize(128).DistinctPCs; static < 9 {
		t.Fatalf("BFS has %d static memory PCs, paper shows 10", static)
	}
	if len(pcs) < 5 {
		t.Fatalf("BFS has %d profiled memory PCs, want at least 5", len(pcs))
	}
	shortDominated, longDominated := false, false
	for _, pc := range pcs {
		fr := prof.PCFractions(pc)
		if fr[0] > 0.5 {
			shortDominated = true
		}
		if fr[2]+fr[3] > 0.5 {
			longDominated = true
		}
	}
	if !shortDominated {
		t.Error("no BFS instruction has a short-RD-dominated profile (paper: insn 2/3)")
	}
	if !longDominated {
		t.Error("no BFS instruction has a long-RD-dominated profile (paper: insn 4/9)")
	}
}

// TestReuseMissRateShrinksWithAssociativity reproduces Fig. 4's overall
// trend on the CI class: the reuse miss rate must not increase as the
// cache grows, and must drop substantially by 64KB for apps that are not
// >64-dominated.
func TestReuseMissRateShrinksWithAssociativity(t *testing.T) {
	g16 := config.Baseline().L1D
	g32 := config.L1D32KB().L1D
	g64 := config.L1D64KB().L1D
	n := config.Baseline().NumSMs
	for _, s := range ByClass(CI) {
		k := s.Generate()
		m16 := rdd.ReuseMissRate(k, n, g16)
		m32 := rdd.ReuseMissRate(k, n, g32)
		m64 := rdd.ReuseMissRate(k, n, g64)
		if m32 > m16+1e-9 || m64 > m32+1e-9 {
			t.Errorf("%s: reuse miss rate grew with cache size: %.3f/%.3f/%.3f", s.Abbr, m16, m32, m64)
		}
		if s.DominantBucket == 3 {
			continue // KM/STR: >64 distances defeat even 64KB (paper's exceptions)
		}
		if m64 > 0.75 {
			t.Errorf("%s: 64KB reuse miss rate still %.3f", s.Abbr, m64)
		}
	}
}

// TestCSFootprintsAreCacheable: CS apps other than the compulsory-miss
// dominated ones should show low reuse miss rates at the baseline size.
func TestCSFootprintsAreCacheable(t *testing.T) {
	g16 := config.Baseline().L1D
	n := config.Baseline().NumSMs
	for _, abbr := range []string{"SC", "BP", "SRAD", "GEMM"} {
		s, _ := ByAbbr(abbr)
		if m := rdd.ReuseMissRate(s.Generate(), n, g16); m > 0.15 {
			t.Errorf("%s: baseline reuse miss rate %.3f, want < 0.15 (cache-friendly CS app)", abbr, m)
		}
	}
}

func TestSummariesReasonable(t *testing.T) {
	for _, s := range All() {
		sum := s.Generate().Summarize(128)
		if sum.Blocks != 16 {
			t.Errorf("%s: %d blocks, want 16 (one per SM)", s.Abbr, sum.Blocks)
		}
		if sum.Warps < 16*16 {
			t.Errorf("%s: only %d warps", s.Abbr, sum.Warps)
		}
		if sum.LineAccesses == 0 || sum.DistinctPCs == 0 {
			t.Errorf("%s: empty memory behavior: %+v", s.Abbr, sum)
		}
		if sum.DistinctPCs > 128 {
			t.Errorf("%s: %d memory PCs exceeds the 128-entry PDPT (§4.1.3)", s.Abbr, sum.DistinctPCs)
		}
	}
}

func TestLoadSpanClamps(t *testing.T) {
	b := &wb{}
	b.loadSpan(0, 0, 0)  // clamps to 1
	b.loadSpan(1, 0, 64) // clamps to 32
	k := &trace.Kernel{Name: "x", Blocks: []*trace.Block{{Warps: []*trace.WarpTrace{b.trace()}}}}
	if err := k.Validate(32); err != nil {
		t.Fatalf("clamped spans invalid: %v", err)
	}
	if got := len(b.instrs[0].CoalescedLines(128)); got != 1 {
		t.Errorf("span 0 coalesced to %d lines", got)
	}
	if got := len(b.instrs[1].CoalescedLines(128)); got != 32 {
		t.Errorf("span 64 coalesced to %d lines, want 32", got)
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	var mem layout
	a := mem.array(4)
	b := mem.array(4)
	if uint64(b) <= uint64(a)+4*128 {
		t.Errorf("regions overlap: a=%#x b=%#x", uint64(a), uint64(b))
	}
}

func TestRatioAgainstNamedTargets(t *testing.T) {
	// Spot checks anchoring the Fig. 6 endpoints.
	hg, _ := ByAbbr("HG")
	if r := hg.Generate().Summarize(128).MemoryAccessRatio(); r > 0.002 {
		t.Errorf("HG ratio %.4f, want < 0.2%% (lowest of the suite)", r)
	}
	str, _ := ByAbbr("STR")
	if r := str.Generate().Summarize(128).MemoryAccessRatio(); r < 0.10 {
		t.Errorf("STR ratio %.4f, want > 10%% (highest of the suite)", r)
	}
}

func TestPerBlockArrays(t *testing.T) {
	var mem layout
	arrs := perBlockArrays(&mem, 4, 8)
	if len(arrs) != 4 {
		t.Fatalf("got %d regions", len(arrs))
	}
	seen := map[uint64]bool{}
	for _, a := range arrs {
		if seen[uint64(a)] {
			t.Error("duplicate region base")
		}
		seen[uint64(a)] = true
	}
}

func TestSeedForDistinct(t *testing.T) {
	a := seedFor(1, 0, 0).Uint64()
	b := seedFor(1, 0, 1).Uint64()
	c := seedFor(1, 1, 0).Uint64()
	d := seedFor(2, 0, 0).Uint64()
	vals := map[uint64]bool{a: true, b: true, c: true, d: true}
	if len(vals) != 4 {
		t.Error("seedFor collides across (app, block, warp)")
	}
}

func TestFractionsHelperNaNFree(t *testing.T) {
	// Guard against NaNs leaking out of profile fractions for any app.
	cfg := config.Baseline()
	for _, s := range All() {
		fr := rdd.ProfileKernel(s.Generate(), cfg.NumSMs, cfg.L1D).GlobalFractions()
		for i, f := range fr {
			if math.IsNaN(f) {
				t.Errorf("%s: NaN fraction in bucket %d", s.Abbr, i)
			}
		}
	}
}
