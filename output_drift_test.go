package dlpsim

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The committed paperfigs_output.txt / ablate_output.txt drifted
// silently once before (stale geomean cells after a renderer change).
// These tests re-render both documents from scratch and diff them
// byte-for-byte against the committed files, so neither a renderer nor
// a simulator change can ship without regenerating them (make figures).
// Skipped under -short like every other full-suite test.

var (
	assocOnce sync.Once
	assocRes  *SuiteResult
	assocErr  error
)

// assocSuite runs the Fig. 5 associativity suite once per test binary,
// mirroring paperSuite.
func assocSuite(t testing.TB) *SuiteResult {
	if tt, ok := t.(*testing.T); ok && testing.Short() {
		tt.Skip("full associativity suite skipped in -short mode")
	}
	assocOnce.Do(func() {
		assocRes, assocErr = RunSuite(context.Background(), AssocSchemes(), nil)
	})
	if assocErr != nil {
		t.Fatalf("assoc suite failed: %v", assocErr)
	}
	return assocRes
}

// diffAgainstFile fails with the first differing line, which localizes
// a drift far better than a byte-offset mismatch in a 128-line diff.
func diffAgainstFile(t *testing.T, got, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := string(raw)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "<missing>", "<missing>"
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s drifted at line %d:\n  committed: %q\n  rendered:  %q\n"+
				"regenerate with `make figures` if the change is intentional", path, i+1, w, g)
		}
	}
	t.Fatalf("%s drifted (content equal per line but bytes differ — check trailing newlines)", path)
}

// TestPaperfigsOutputCommitted re-renders exactly what `paperfigs`
// prints to stdout — every table, in command order — and diffs it
// against the committed reference.
func TestPaperfigsOutputCommitted(t *testing.T) {
	eval := paperSuite(t)  // Figs. 10-13 + speedups
	assoc := assocSuite(t) // Fig. 5

	var b strings.Builder
	render := func(f func(w io.Writer) error) {
		if err := f(&b); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintln(&b)
	}
	renderTable := func(tbl *Table, err error) {
		if err != nil {
			t.Fatal(err)
		}
		render(tbl.Render)
	}

	fmt.Fprintln(&b, Table2())
	fmt.Fprintln(&b, OverheadReport(BaselineConfig()))
	render(Fig3RDD().Render)
	renderTable(Fig4MissRates())
	renderTable(Fig6Ratios())
	render(Fig7BFS().Render)
	renderTable(assoc.Fig5IPC())
	renderTable(eval.Fig10IPC())
	renderTable(eval.Fig11aTraffic())
	renderTable(eval.Fig11bEvictions())
	renderTable(eval.Fig12aHitRate())
	renderTable(eval.Fig12bHits())
	renderTable(eval.Fig13ICNT())

	sp, err := eval.Speedups()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&b, "== headline speedups (CI geometric mean vs baseline) ==")
	for _, sc := range PaperSchemes() {
		fmt.Fprintf(&b, "%-18s CI x%.3f   CS x%.3f\n", sc.Name, sp[sc.Name]["CI"], sp[sc.Name]["CS"])
	}

	diffAgainstFile(t, b.String(), "paperfigs_output.txt")
}

// TestAblateOutputCommitted re-renders what `ablate` (all sweeps)
// prints to stdout and diffs it against the committed reference.
func TestAblateOutputCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps skipped in -short mode")
	}
	ctx := context.Background()
	apps := DefaultAblationApps()
	// One runner, one cache — the same sharing the command uses, so the
	// per-app baselines simulate once across all four sweeps.
	r := &Runner{Cache: NewRunCache()}
	var b strings.Builder
	for _, sweep := range []func(context.Context, []string, *Runner) (*Ablation, error){
		AblateSamplePeriod, AblatePDBits, AblateVTAWays, AblateWarpLimit,
	} {
		ab, err := sweep(ctx, apps, r)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintln(&b, ab.Render())
	}
	diffAgainstFile(t, b.String(), "ablate_output.txt")
}

// TestAblateRenderCores8 re-renders the first committed ablation block
// (the sample-period sweep) with eight-way phase parallelism inside
// every simulation and the sampled self-checks on, and demands the
// rendered bytes match the committed reference. This is the rendered
// counterpart of TestGoldenSuiteIdentityCores8: the registry refactor
// must not perturb a single printed character at any core count.
func TestAblateRenderCores8(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep skipped in -short mode")
	}
	withGOMAXPROCS(t, 16)
	r := &Runner{Workers: 2, Cores: 8, SelfCheck: true, Cache: NewRunCache()}
	ab, err := AblateSamplePeriod(context.Background(), DefaultAblationApps(), r)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile("ablate_output.txt")
	if err != nil {
		t.Fatal(err)
	}
	want, _, ok := strings.Cut(string(raw), "\n\n")
	if !ok {
		t.Fatal("ablate_output.txt has no blank-line block separator")
	}
	if got := strings.TrimSuffix(ab.Render(), "\n"); got != want {
		t.Errorf("-j 2 -cores 8 sample-period sweep drifted from committed block:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestInterruptExitCode pins the Ctrl-C contract end to end: a real
// SIGINT delivered to a running dlpsim must exit 130 — distinct from
// both success and the generic failure exit 1 — so scripts can tell an
// interrupted run from a broken one.
func TestInterruptExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dlpsim")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dlpsim").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	// MM simulates for multiple seconds, so an interrupt one second in
	// lands mid-run with wide margin on both sides.
	cmd := exec.Command(bin, "-app", "MM", "-policy", "baseline")
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("dlpsim exited cleanly despite SIGINT (err=%v)", err)
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("interrupted dlpsim exited %d, want 130", code)
	}
}
