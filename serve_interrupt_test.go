package dlpsim

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestServedInterruptDrainsAndExits130 pins the server's interrupt
// contract end to end: a real SIGINT to a running dlpserved with a job
// in flight must (a) let the job finish inside the drain budget — the
// waiting client still gets its 200 — and (b) exit 130, the same
// Ctrl-C status as the batch CLIs.
func TestServedInterruptDrainsAndExits130(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dlpserved")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dlpserved").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-j", "2", "-drain", "30s")
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(bytes.TrimSpace(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// MM simulates for multiple seconds (the same workload the dlpsim
	// interrupt test relies on), so the signal lands mid-job with wide
	// margin on both sides.
	spec := []byte(`{"schema": 1, "policy": "baseline", "workload": {"app": "MM"}}`)
	type outcome struct {
		status int
		err    error
	}
	resc := make(chan outcome, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json", bytes.NewReader(spec))
		o := outcome{err: err}
		if err == nil {
			o.status = resp.StatusCode
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		resc <- o
	}()

	// Wait until the job is actually running, then interrupt the server.
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/stats", addr))
		if err != nil {
			t.Fatalf("stats poll: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if bytes.Contains(b, []byte(`"running": 1`)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	// Drain means the in-flight client is served, not dropped.
	select {
	case o := <-resc:
		if o.err != nil {
			t.Errorf("waiting client dropped during drain: %v", o.err)
		} else if o.status != http.StatusOK {
			t.Errorf("waiting client got %d during drain, want 200", o.status)
		}
	case <-time.After(60 * time.Second):
		t.Error("waiting client never got a response after SIGINT")
	}

	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("dlpserved exited cleanly despite SIGINT (err=%v)", err)
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("interrupted dlpserved exited %d, want 130", code)
	}
}
