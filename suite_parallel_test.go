package dlpsim

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// These tests pin the runner refactor's correctness contract at the
// suite level: RunSuite's tables are identical at any worker count, and
// a shared result cache makes a repeated suite free. They use a small
// app subset so they stay cheap enough for `go test -race -short`,
// which is what exercises the worker pool under the race detector.

func smallApps(t *testing.T) []Workload {
	t.Helper()
	var apps []Workload
	for _, abbr := range []string{"BP", "HS"} {
		w, err := WorkloadByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, w)
	}
	return apps
}

func smallSchemes() []Scheme {
	return []Scheme{
		{"16KB(Baseline)", Baseline, 16},
		{"DLP", DLP, 16},
	}
}

// TestRunSuiteOrderIndependence: the same job set at -j 1 and -j 8
// yields byte-identical SuiteResult tables.
func TestRunSuiteOrderIndependence(t *testing.T) {
	apps := smallApps(t)
	run := func(workers int) *SuiteResult {
		t.Helper()
		res, err := RunSuite(context.Background(), smallSchemes(),
			&SuiteOptions{Workers: workers, Apps: apps})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	render := func(r *SuiteResult) string {
		t.Helper()
		tab, err := r.Fig10IPC()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := tab.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	serial := run(1)
	parallel := run(8)
	for _, app := range serial.Apps {
		for _, sc := range serial.Schemes {
			a, b := serial.Stats[app.Abbr][sc.Name], parallel.Stats[app.Abbr][sc.Name]
			if *a != *b {
				t.Errorf("%s under %s: -j1 and -j8 stats differ\n%+v\nvs\n%+v",
					app.Abbr, sc.Name, a, b)
			}
		}
	}
	if s, p := render(serial), render(parallel); s != p {
		t.Errorf("rendered tables differ between -j1 and -j8:\n%s\nvs\n%s", s, p)
	}
}

// TestRunSuiteCoresRenderIdentity pins the two-level pool end to end at
// the printed-bytes level: the suite on 8 workers with two phase shards
// inside every simulation (and the sampled self-checks on) must render
// byte-identically to the plain serial suite. It runs in -short mode on
// purpose — `make check` then drives the phase barriers, the sharded
// request pools and the serial post-phase under the race detector.
func TestRunSuiteCoresRenderIdentity(t *testing.T) {
	apps := smallApps(t)
	withGOMAXPROCS(t, 16)
	render := func(opts *SuiteOptions) string {
		t.Helper()
		opts.Apps = apps
		res, err := RunSuite(context.Background(), smallSchemes(), opts)
		if err != nil {
			t.Fatalf("workers=%d cores=%d: %v", opts.Workers, opts.Cores, err)
		}
		var b strings.Builder
		for _, build := range []func() (*Table, error){res.Fig10IPC, res.Fig12aHitRate, res.Fig13ICNT} {
			tab, err := build()
			if err != nil {
				t.Fatal(err)
			}
			if err := tab.Render(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	serial := render(&SuiteOptions{Workers: 1})
	parallel := render(&SuiteOptions{Workers: 8, Cores: 2, SelfCheck: true})
	if serial != parallel {
		t.Errorf("-j8 -cores2 renders differently from serial:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
}

// TestRunSuiteCacheAvoidsResimulation: with a shared cache, the second
// RunSuite call performs zero simulations and produces the same tables.
func TestRunSuiteCacheAvoidsResimulation(t *testing.T) {
	apps := smallApps(t)
	cache := NewRunCache()
	var (
		mu        sync.Mutex
		simulated int
	)
	opts := &SuiteOptions{
		Workers: 4,
		Cache:   cache,
		Apps:    apps,
		Events: func(ev RunEvent) {
			if ev.Kind == JobDone && !ev.Cached {
				mu.Lock()
				simulated++
				mu.Unlock()
			}
		},
	}

	first, err := RunSuite(context.Background(), smallSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	wantJobs := len(apps) * len(smallSchemes())
	if simulated != wantJobs {
		t.Fatalf("first suite simulated %d jobs, want %d", simulated, wantJobs)
	}

	simulated = 0
	second, err := RunSuite(context.Background(), smallSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 0 {
		t.Errorf("second suite simulated %d jobs, want 0 (all cached)", simulated)
	}
	for _, app := range first.Apps {
		for _, sc := range first.Schemes {
			if *first.Stats[app.Abbr][sc.Name] != *second.Stats[app.Abbr][sc.Name] {
				t.Errorf("%s under %s: cached suite differs", app.Abbr, sc.Name)
			}
		}
	}
}

// TestRunSuiteCancelled: a cancelled context fails the suite instead of
// silently returning partial tables.
func TestRunSuiteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuite(ctx, smallSchemes(), &SuiteOptions{Apps: smallApps(t)}); err == nil {
		t.Fatal("cancelled RunSuite reported success")
	}
}
